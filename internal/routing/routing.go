// Package routing provides the network-layer substrate shared by every
// routing protocol in this repository: node identifiers, data packets,
// control-message plumbing over the MAC, and the Protocol interface the
// LDR, AODV, DSR, and OLSR implementations plug into.
package routing

import (
	"encoding/binary"
	"sort"
	"strconv"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/runpool"
	"github.com/manetlab/ldr/internal/sim"
)

// NodeID identifies a node; IDs are dense indices starting at zero.
type NodeID int

// BroadcastID addresses all one-hop neighbors.
const BroadcastID NodeID = NodeID(mac.BroadcastAddr)

// DefaultTTL is the initial IP-style hop limit on data packets.
const DefaultTTL = 64

// DataPacket is a network-layer data packet.
//
// Ownership: a packet handed to a protocol (Originate, HandleData) is
// owned by that protocol until it reaches exactly one terminal call —
// DeliverLocal, DropData, or a successful SendData hand-off (the MAC
// acknowledging the frame consumes the sender's ownership). A failed
// SendData returns ownership through DataFailed, where the protocol must
// again retry, drop, or buffer it. Packets the node layer created come
// from a per-node free list and are recycled once every reference is
// released; violating the single-terminal-call rule corrupts the pool.
type DataPacket struct {
	Src, Dst NodeID
	ID       uint64        // unique per origin node
	Bytes    int           // payload size
	TTL      int           // remaining hop budget
	SentAt   time.Duration // origination time, for latency accounting

	// Source-routing fields, used by DSR only.
	SourceRoute []NodeID // full path including Src and Dst
	SRIndex     int      // index of the current hop in SourceRoute
	Salvaged    int      // number of times the packet has been salvaged

	// Retried marks a packet already re-sent once after a link failure at
	// this hop; protocols with a single-retry policy (OLSR) use it to drop
	// on the second failure. Cleared on every hop (the receiving node's
	// copy starts fresh).
	Retried bool

	// Pool bookkeeping, maintained by the owning Node. refs counts
	// outstanding ownership references (protocol holder + one per MAC
	// frame the packet sits in); pooled distinguishes free-list packets
	// from externally constructed ones, which are never recycled.
	refs   int32
	pooled bool
}

// Message is a protocol control message. Size is the on-air size in bytes
// and Kind classifies the message for load accounting.
//
// A received message (HandleControl, promiscuous taps) is shared with
// every other receiver of the broadcast and with the sender's pool: it is
// read-only and must not be retained past the call. Protocols that relay
// a message re-send a fresh copy.
type Message interface {
	Kind() metrics.ControlKind
	Size() int
}

// Protocol is the interface every routing protocol implements. All methods
// run on the simulator goroutine.
type Protocol interface {
	// Start installs timers and begins protocol operation.
	Start()
	// HandleControl processes a received control message.
	HandleControl(from NodeID, msg Message)
	// HandleData processes a received data packet (addressed to this node
	// at the link layer; may be destined here or need forwarding). The
	// protocol takes ownership of pkt (see DataPacket).
	HandleData(from NodeID, pkt *DataPacket)
	// Originate injects a locally generated data packet. The protocol
	// takes ownership of pkt.
	Originate(pkt *DataPacket)
	// Stop cancels timers; the protocol must not schedule further events.
	Stop()
}

// DataFailureHandler is implemented by protocols that react to the MAC
// exhausting its retries on a unicast data frame (link breakage). The
// failed packet's ownership returns to the protocol, which must retry,
// buffer, or drop it. Protocols that do not implement the interface
// silently lose failed packets (acceptable only in tests).
type DataFailureHandler interface {
	DataFailed(next NodeID, pkt *DataPacket)
}

// MessageRecycler is implemented by protocols that draw their control
// messages from free lists. The node layer hands a message back exactly
// once, after its MAC frame is fully released (transmitted or failed,
// all receptions completed); the protocol may then reuse the object.
type MessageRecycler interface {
	RecycleMessage(msg Message)
}

// RouteEntry is a normalized view of one routing-table row, used by the
// loop checker and debugging tools. SeqNo and FD are zero for protocols
// without those concepts.
type RouteEntry struct {
	Dst    NodeID
	Next   NodeID
	Metric int
	SeqNo  uint64
	FD     int
	Valid  bool
}

// TableSnapshotter is implemented by protocols whose routing state can be
// inspected for invariant checking.
type TableSnapshotter interface {
	SnapshotTable() []RouteEntry
}

// TableAppender is the allocation-free variant of TableSnapshotter:
// entries are appended to the caller's buffer. Continuous auditors (the
// fault subsystem snapshots every table many times per simulated second)
// use it to reuse one buffer across snapshots.
type TableAppender interface {
	AppendTable(out []RouteEntry) []RouteEntry
}

// VolatileResetter is Reset without the protocol's stable storage: even
// the state Reset deliberately persists across a crash (for LDR, the
// node's own sequence number and the (sn, fd) labels of every known
// destination — paper §5) is wiped. The bounded model checker
// (internal/modelcheck) uses it to show the persistence is load-bearing:
// LDR with volatile resets loses loop freedom on the same schedules its
// persistent form survives.
type VolatileResetter interface {
	ResetVolatile()
}

// ModelStater is implemented by protocols whose complete protocol-level
// state can be serialized deterministically, which is what the bounded
// model checker memoizes states on. The encoding must cover everything
// that influences future behaviour (tables with labels, duplicate
// caches, pending buffers, active discoveries, counters) and nothing
// that does not.
//
// mapID relabels node identifiers — the checker canonicalizes states
// under topology automorphisms by re-encoding through a permutation.
// Implementations must emit map- and set-valued state sorted by the
// MAPPED identifiers, so two symmetric states serialize to equal bytes.
type ModelStater interface {
	AppendModelState(out []byte, mapID func(NodeID) NodeID) []byte
}

// AppendPendingModelState serializes a protocol's pending-data map
// (destination → queued packets, in queue order) for a ModelStater
// encoding, sorted by the mapped destination. LDR and AODV share the
// map shape and both use this helper.
func AppendPendingModelState(out []byte, pending map[NodeID][]*DataPacket, mapID func(NodeID) NodeID) []byte {
	type prow struct {
		dst NodeID
		q   []*DataPacket
	}
	rows := make([]prow, 0, len(pending))
	for dst, q := range pending {
		rows = append(rows, prow{mapID(dst), q})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dst < rows[j].dst })
	out = binary.AppendUvarint(out, uint64(len(rows)))
	for _, r := range rows {
		out = binary.AppendVarint(out, int64(r.dst))
		out = binary.AppendUvarint(out, uint64(len(r.q)))
		for _, pkt := range r.q {
			out = binary.AppendVarint(out, int64(mapID(pkt.Src)))
			out = binary.AppendUvarint(out, pkt.ID)
			out = binary.AppendVarint(out, int64(pkt.TTL))
			out = binary.AppendVarint(out, int64(pkt.Bytes))
		}
	}
	return out
}

// ModelEnv replaces the MAC/radio transport and the protocol's timers
// when a node runs inside the bounded model checker: outgoing traffic is
// captured into per-link pending multisets instead of being framed onto
// the medium, and timers either run as deterministic immediate microtasks
// (broadcast jitter) or are parked on the node's never-run simulator
// queue (discovery timeouts, cache expiry), where Cancel still works.
// See internal/modelcheck for the only implementation.
type ModelEnv interface {
	// ModelSendControl captures an outgoing control message. The message
	// object belongs to the environment until consumed; it is never
	// recycled back to the protocol's pools (the pools simply allocate).
	ModelSendControl(from, to NodeID, msg Message)
	// ModelSendData captures an outgoing data packet. The environment
	// receives an unpooled deep copy owning a fresh reference chain; the
	// sender's own reference has already been released.
	ModelSendData(from, next NodeID, pkt *DataPacket)
	// ModelSchedule intercepts a protocol timer. handled=true means the
	// environment queued fn as an immediate microtask (the returned zero
	// Timer is safely cancellable); handled=false falls through to the
	// node's simulator queue, which the model never advances.
	ModelSchedule(delay time.Duration, fn func()) (t sim.Timer, handled bool)
}

// Resetter is implemented by protocols whose volatile state can be wiped
// in place, modelling the memory loss of a crash/reboot cycle. Reset
// cancels the protocol's timers and discards routing state but leaves the
// instance runnable: the fault injector calls Reset at crash time and
// Start again at reboot. What survives a Reset is a per-protocol design
// decision — LDR persists its own destination sequence number (LDR paper
// §5), AODV deliberately loses its (the premise of the van Glabbeek
// et al. loop construction).
type Resetter interface {
	Reset()
}

// Node is the network layer of one simulated node. It owns the MAC, routes
// control and data packets to the protocol, and feeds the metrics
// collector. It implements mac.FrameHandler: send outcomes and frame
// releases come back through FrameSent/FrameFailed/FrameReleased, which
// lets frames, their netFrame payloads, and data packets live on per-node
// free lists instead of being reallocated per transmission.
type Node struct {
	id     NodeID
	sim    *sim.Simulator
	mac    *mac.MAC
	col    *metrics.Collector
	rng    *rng.Source
	proto  Protocol
	tracer Tracer

	// Interface views of proto, resolved once at SetProtocol so the hot
	// paths skip the type assertions.
	dataFail DataFailureHandler
	recycler MessageRecycler

	nextPktID uint64
	down      bool
	menv      ModelEnv // non-nil only under the bounded model checker

	// Run-local free lists (see internal/runpool): frames and their
	// netFrame payloads cycle through the MAC; packets cycle through
	// originate/forward/deliver. Nothing here is shared across nodes or
	// goroutines.
	framePool runpool.Pool[mac.Frame]
	nfPool    runpool.Pool[netFrame]
	pktPool   runpool.Pool[DataPacket]
}

var _ mac.FrameHandler = (*Node)(nil)

// netFrame is the payload the network layer puts in MAC frames. Exactly
// one of data/msg is set. onFail carries the control-frame failure
// callback (rare, cold path); data-frame failures dispatch through the
// protocol's DataFailureHandler instead.
type netFrame struct {
	data   *DataPacket
	msg    Message
	onFail func()
}

// NewNode wires a node's network layer to a fresh MAC on the medium.
func NewNode(id NodeID, s *sim.Simulator, medium *radio.Medium, macCfg mac.Config, col *metrics.Collector, src *rng.Source) *Node {
	n := &Node{
		id:  id,
		sim: s,
		col: col,
		rng: src,
	}
	n.mac = mac.New(int(id), s, medium, macCfg, src.Split("mac"), n.deliverFrame)
	return n
}

// SetProtocol binds the routing protocol. Must be called before Start.
func (n *Node) SetProtocol(p Protocol) {
	n.proto = p
	n.dataFail, _ = p.(DataFailureHandler)
	n.recycler, _ = p.(MessageRecycler)
}

// Protocol returns the bound protocol.
func (n *Node) Protocol() Protocol { return n.proto }

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Now returns the current virtual time.
func (n *Node) Now() time.Duration { return n.sim.Now() }

// Schedule runs fn after delay of virtual time.
func (n *Node) Schedule(delay time.Duration, fn func()) sim.Timer {
	if n.menv != nil {
		if t, handled := n.menv.ModelSchedule(delay, fn); handled {
			return t
		}
	}
	return n.sim.Schedule(delay, fn)
}

// SetModelEnv diverts this node's transport and timers to a model
// environment (nil restores normal operation). Install before Start;
// see ModelEnv.
func (n *Node) SetModelEnv(env ModelEnv) { n.menv = env }

// RNG returns this node's random stream.
func (n *Node) RNG() *rng.Source { return n.rng }

// Metrics returns the run-wide collector.
func (n *Node) Metrics() *metrics.Collector { return n.col }

// MAC exposes the node's MAC for statistics.
func (n *Node) MAC() *mac.MAC { return n.mac }

// SetDown powers the node off (true) or on (false), taking its interface
// with it. It only flips the power state: crash semantics (wiping the
// MAC and protocol state) belong to the caller — see internal/fault.
func (n *Node) SetDown(down bool) {
	n.down = down
	n.mac.SetDown(down)
}

// Down reports whether the node is powered off.
func (n *Node) Down() bool { return n.down }

// newFrame pulls a frame and its netFrame payload from the free lists,
// reset and wired to this node's handler.
func (n *Node) newFrame() (*mac.Frame, *netFrame) {
	f := n.framePool.Get()
	nf := n.nfPool.Get()
	*nf = netFrame{}
	*f = mac.Frame{Payload: nf, Handler: n}
	return f, nf
}

// newPacket pulls a packet from the free list, zeroed except for the
// retained SourceRoute capacity, owned by the caller (refs=1).
func (n *Node) newPacket() *DataPacket {
	pkt := n.pktPool.Get()
	sr := pkt.SourceRoute
	*pkt = DataPacket{SourceRoute: sr[:0], refs: 1, pooled: true}
	return pkt
}

// copyPacket clones src into a fresh pooled packet for a receiver (or
// promiscuous tap): every broadcast receiver must get its own copy, since
// mutating shared state (TTL, source-route index) would corrupt the other
// receivers. The clone starts a new ownership chain at this hop.
func (n *Node) copyPacket(src *DataPacket) *DataPacket {
	cp := n.pktPool.Get()
	sr := cp.SourceRoute
	*cp = *src
	cp.SourceRoute = append(sr[:0], src.SourceRoute...)
	cp.Retried = false
	cp.refs = 1
	cp.pooled = true
	return cp
}

// releasePacket drops one ownership reference; the last release returns
// the packet to the free list. Externally constructed packets (tests)
// are never recycled.
func (n *Node) releasePacket(pkt *DataPacket) {
	if !pkt.pooled {
		return
	}
	if pkt.refs--; pkt.refs == 0 {
		n.pktPool.Put(pkt)
	}
}

// CloneDataPacket returns an unpooled deep copy of pkt starting a fresh
// ownership chain: handing it to a protocol is safe, and every release
// on it is a no-op (unpooled packets are never recycled). The model
// checker's abstract transport uses it for link hand-offs and for the
// duplicate action.
func CloneDataPacket(pkt *DataPacket) *DataPacket {
	cp := *pkt
	cp.SourceRoute = append([]NodeID(nil), pkt.SourceRoute...)
	cp.Retried = false
	cp.refs = 1
	cp.pooled = false
	return &cp
}

// PromiscuousFunc receives overheard traffic: frames addressed to other
// nodes that this node's radio decoded anyway. Exactly one of data/msg is
// non-nil per call.
type PromiscuousFunc func(from NodeID, data *DataPacket, msg Message)

// SetPromiscuous installs an overhearing tap (nil disables). The overheard
// packet is this node's own copy; mutating it is safe, but it is only
// valid for the duration of the call — the node reclaims it afterwards.
func (n *Node) SetPromiscuous(fn PromiscuousFunc) {
	if fn == nil {
		n.mac.SetPromiscuous(nil)
		return
	}
	n.mac.SetPromiscuous(func(from int, f *mac.Frame) {
		nf, ok := f.Payload.(*netFrame)
		if !ok {
			return
		}
		switch {
		case nf.msg != nil:
			fn(NodeID(from), nil, nf.msg)
		case nf.data != nil:
			cp := n.copyPacket(nf.data)
			fn(NodeID(from), cp, nil)
			n.releasePacket(cp)
		}
	})
}

// SendControl transmits a control message. to may be BroadcastID. The
// message is counted as one hop-wise control transmission; callers count
// initiations themselves via the collector. onFail, which may be nil, is
// invoked if a unicast transmission exhausts its MAC retries. The message
// belongs to the frame until the node layer recycles it (see
// MessageRecycler); callers must not reuse the same message object in a
// second SendControl call.
func (n *Node) SendControl(to NodeID, msg Message, onFail func()) {
	n.col.CountControlTransmit(msg.Kind())
	if n.menv != nil {
		// Model mode: the environment owns the message from here on.
		// onFail is dropped — the abstract transport has no MAC feedback,
		// so unicast failures are unobservable (a soundness caveat the
		// model checker documents).
		n.menv.ModelSendControl(n.id, to, msg)
		return
	}
	f, nf := n.newFrame()
	nf.msg = msg
	nf.onFail = onFail
	f.To = int(to)
	f.Bytes = msg.Size()
	n.mac.Send(f)
}

// SendData transmits a data packet to the next hop. A successful hand-off
// (MAC acknowledgment, or broadcast completion) consumes the caller's
// ownership of pkt; when the MAC exhausts its retries, ownership returns
// to the protocol through DataFailed.
func (n *Node) SendData(next NodeID, pkt *DataPacket) {
	n.col.DataTransmitted++
	n.trace(TraceForward, pkt, next, 0)
	if n.menv != nil {
		// Model mode: an immediate successful hand-off. The environment
		// gets its own unpooled copy and the sender's ownership ends here,
		// exactly as a successful MAC acknowledgment would end it.
		cp := CloneDataPacket(pkt)
		n.releasePacket(pkt)
		n.menv.ModelSendData(n.id, next, cp)
		return
	}
	if pkt.pooled {
		pkt.refs++ // the frame's reference, released with the frame
	}
	f, nf := n.newFrame()
	nf.data = pkt
	f.To = int(next)
	f.Bytes = pkt.Bytes + dataHeaderBytes(pkt)
	n.mac.Send(f)
}

// FrameSent implements mac.FrameHandler. Hand-off bookkeeping happens in
// FrameReleased, once receptions have drained too.
func (n *Node) FrameSent(f *mac.Frame) {}

// FrameFailed implements mac.FrameHandler: the MAC gave up on a unicast.
// Data-packet ownership returns to the protocol; control frames invoke
// their stashed onFail callback.
func (n *Node) FrameFailed(f *mac.Frame) {
	nf, ok := f.Payload.(*netFrame)
	if !ok {
		return
	}
	switch {
	case nf.data != nil:
		if n.dataFail != nil {
			n.dataFail.DataFailed(NodeID(f.To), nf.data)
		}
	case nf.onFail != nil:
		nf.onFail()
	}
}

// FrameReleased implements mac.FrameHandler: the frame's last reference
// (queue slot and every in-flight transmission) is gone, so the frame,
// its netFrame, and — for successful data hand-offs — the sender's packet
// reference can all be reclaimed.
func (n *Node) FrameReleased(f *mac.Frame) {
	nf, ok := f.Payload.(*netFrame)
	if !ok {
		return
	}
	if nf.data != nil {
		if !f.Failed {
			// Successful hand-off: the next hop (or broadcast receivers)
			// copied the packet, so the sender's ownership ends here.
			n.releasePacket(nf.data)
		}
		n.releasePacket(nf.data) // the frame's own reference
	} else if nf.msg != nil && n.recycler != nil {
		n.recycler.RecycleMessage(nf.msg)
	}
	*nf = netFrame{}
	n.nfPool.Put(nf)
	f.Payload = nil
	f.Handler = nil
	f.OnSent = nil
	f.OnFail = nil
	f.Failed = false
	n.framePool.Put(f)
}

// OriginateData creates a data packet at this node and hands it to the
// protocol. It is the entry point used by the traffic generator.
func (n *Node) OriginateData(dst NodeID, bytes int) {
	n.nextPktID++
	pkt := n.newPacket()
	pkt.Src = n.id
	pkt.Dst = dst
	pkt.ID = n.nextPktID
	pkt.Bytes = bytes
	pkt.TTL = DefaultTTL
	pkt.SentAt = n.sim.Now()
	n.col.NoteInitiated(int(pkt.Src), pkt.ID)
	n.trace(TraceOriginate, pkt, BroadcastID, 0)
	if n.down {
		// The application is down with the node: the packet still counts
		// as offered load (the flow does not pause for the outage) and is
		// lost on the spot.
		n.DropData(pkt, DropNodeDown)
		return
	}
	n.proto.Originate(pkt)
}

// DeliverLocal records the successful end-to-end delivery of a packet
// destined to this node, consuming the caller's ownership of pkt. A
// packet whose (Src, ID) already saw a terminal event — the original of
// a radio-duplicated copy, typically — is suppressed: it neither recounts
// DataDelivered nor re-accumulates latency, and emits no trace event
// (the first terminal event wins).
func (n *Node) DeliverLocal(pkt *DataPacket) {
	if n.col.NoteDelivered(int(pkt.Src), pkt.ID) {
		lat := n.sim.Now() - pkt.SentAt
		n.col.TotalLatency += lat
		n.col.Latency.Observe(lat)
		if hops := DefaultTTL - pkt.TTL + 1; hops > 0 {
			n.col.HopsSum += uint64(hops)
		}
		n.trace(TraceDeliver, pkt, n.id, 0)
	}
	n.releasePacket(pkt)
}

// DropData records a data packet lost at this node for the given reason
// (no route, TTL expiry, queue overflow, link failure, crash wipe),
// consuming the caller's ownership of pkt. Like DeliverLocal it is
// first-terminal-event-wins: dropping a stale copy of an already-terminal
// packet only bumps the LateDrops diagnostic.
func (n *Node) DropData(pkt *DataPacket, reason DropReason) {
	if n.col.NoteDropped(int(pkt.Src), pkt.ID, reason) {
		n.trace(TraceDrop, pkt, BroadcastID, reason)
	}
	n.releasePacket(pkt)
}

// Crash models a node crash for the fault injector: the node powers off,
// every data packet waiting in (or at the head of) its MAC queue is
// accounted as dropped with DropReset, and the MAC and volatile protocol
// state are wiped. Without the queue walk those packets would vanish —
// initiated but never delivered or dropped — and break the conservation
// equation the conformance auditor enforces.
//
// Ordering matters for the pools: DropData here releases each packet's
// protocol reference while the MAC frame still holds its own, and
// mac.Reset then marks the frames failed and releases them without
// callbacks — FrameReleased sees Failed and drops only the frame
// reference, so nothing is released twice.
func (n *Node) Crash() {
	n.SetDown(true)
	n.mac.ForEachQueued(func(f *mac.Frame) {
		if nf, ok := f.Payload.(*netFrame); ok && nf.data != nil {
			n.DropData(nf.data, DropReset)
		}
	})
	n.mac.Reset()
	if r, ok := n.proto.(Resetter); ok {
		r.Reset()
	}
}

// HeldDataWalker is implemented by protocols that buffer data packets
// (route-discovery pending queues). The conformance auditor uses it to
// census every place a live packet can legitimately wait.
type HeldDataWalker interface {
	WalkHeldData(fn func(*DataPacket))
}

// HeldControlWalker is implemented by protocols that queue control
// messages after counting their initiation but before handing them to
// SendControl (OLSR's jitter queue). The conformance auditor's control
// ledger uses it: for every kind, initiated must not exceed transmitted
// plus dropped plus currently held.
type HeldControlWalker interface {
	WalkHeldControl(fn func(metrics.ControlKind))
}

// WalkHeldData invokes fn for every data packet currently held at this
// node: frames in the MAC interface queue (including an in-flight head
// awaiting its ACK) and the protocol's own pending buffers.
func (n *Node) WalkHeldData(fn func(*DataPacket)) {
	n.mac.ForEachQueued(func(f *mac.Frame) {
		if nf, ok := f.Payload.(*netFrame); ok && nf.data != nil {
			fn(nf.data)
		}
	})
	if w, ok := n.proto.(HeldDataWalker); ok {
		w.WalkHeldData(fn)
	}
}

func (n *Node) deliverFrame(from int, f *mac.Frame) {
	nf, ok := f.Payload.(*netFrame)
	if !ok || n.proto == nil {
		return
	}
	switch {
	case nf.msg != nil:
		n.proto.HandleControl(NodeID(from), nf.msg)
	case nf.data != nil:
		// Hand the protocol its own pooled copy (see copyPacket).
		n.proto.HandleData(NodeID(from), n.copyPacket(nf.data))
	}
}

// dataHeaderBytes is the network-layer header added to data payloads: a
// 20-byte IP-like header, plus the DSR source-route option when present.
func dataHeaderBytes(pkt *DataPacket) int {
	h := 20
	if len(pkt.SourceRoute) > 0 {
		h += 4 + 4*len(pkt.SourceRoute)
	}
	return h
}

// Network bundles a complete simulated network: engine, medium, and nodes.
type Network struct {
	Sim       *sim.Simulator
	Medium    *radio.Medium
	Nodes     []*Node
	Collector *metrics.Collector

	// Root is the RNG stream every per-node stream was split from; its
	// draw counter totals the whole node tree (see rng.Source.Draws), a
	// cheap determinism fingerprint for the replay layer.
	Root *rng.Source
}

// WalkHeldData invokes fn for every data packet currently held anywhere
// in the network: node MAC queues, protocol pending buffers, and radio
// deliveries deferred by the delay fault hook. It is the conformance
// auditor's census of where live packets can be.
func (nw *Network) WalkHeldData(fn func(*DataPacket)) {
	for _, n := range nw.Nodes {
		n.WalkHeldData(fn)
	}
	nw.Medium.ForEachPendingDelivery(func(payload any) {
		p, ok := mac.DataPayload(payload)
		if !ok {
			return
		}
		if nf, ok := p.(*netFrame); ok && nf.data != nil {
			fn(nf.data)
		}
	})
}

// WalkHeldControl invokes fn with the kind of every control message a
// protocol has initiated but not yet passed to SendControl. Transmission
// is counted at SendControl (MAC enqueue), so MAC queues and the air
// need no walking here — only protocol-level staging queues.
func (nw *Network) WalkHeldControl(fn func(metrics.ControlKind)) {
	for _, n := range nw.Nodes {
		if w, ok := n.proto.(HeldControlWalker); ok {
			w.WalkHeldControl(fn)
		}
	}
}

// ProtocolFactory builds a protocol instance bound to a node.
type ProtocolFactory func(n *Node) Protocol

// NewNetwork creates n nodes over the given mobility model and binds a
// protocol instance to each. Protocols are created but not started; call
// Start to begin.
func NewNetwork(numNodes int, model mobility.Model, radioCfg radio.Config, macCfg mac.Config, seed int64, factory ProtocolFactory) *Network {
	s := sim.New()
	root := rng.New(seed)
	col := metrics.NewCollector()
	medium := radio.New(s, model, radioCfg)
	nw := &Network{
		Sim:       s,
		Medium:    medium,
		Nodes:     make([]*Node, numNodes),
		Collector: col,
		Root:      root,
	}
	for i := 0; i < numNodes; i++ {
		node := NewNode(NodeID(i), s, medium, macCfg, col, root.Split("node"+strconv.Itoa(i)))
		node.SetProtocol(factory(node))
		nw.Nodes[i] = node
	}
	return nw
}

// Start starts every node's protocol.
func (nw *Network) Start() {
	for _, n := range nw.Nodes {
		n.proto.Start()
	}
}

// Stop stops every node's protocol.
func (nw *Network) Stop() {
	for _, n := range nw.Nodes {
		n.proto.Stop()
	}
}
