package routing

import "github.com/manetlab/ldr/internal/metrics"

// DropReason re-exports the typed drop-reason enum at the layer protocols
// actually live in. The underlying type stays in internal/metrics (the
// collector indexes its per-reason counters by it and cannot import this
// package), but protocol code names reasons through these aliases so
// there is exactly one spelling of each reason: a new cause — the
// adversary subsystem's accounted blackhole drop, say — is added here
// and in metrics together, never as a per-protocol string.
type DropReason = metrics.DropReason

// The drop reasons shared by all four protocols and the adversary layer.
const (
	DropOther         DropReason = metrics.DropOther
	DropNoRoute       DropReason = metrics.DropNoRoute
	DropTTL           DropReason = metrics.DropTTL
	DropQueueOverflow DropReason = metrics.DropQueueOverflow
	DropLinkBreak     DropReason = metrics.DropLinkBreak
	DropMalformed     DropReason = metrics.DropMalformed
	DropNodeDown      DropReason = metrics.DropNodeDown
	DropReset         DropReason = metrics.DropReset
	DropAdversary     DropReason = metrics.DropAdversary
)
