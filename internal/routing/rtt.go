package routing

import "time"

// RTTEstimator derives adaptive route lifetimes from observed route
// discovery round trips, the delay-based timeout scheme of the adaptive
// AODV literature: instead of expiring every route after a fixed
// ActiveRouteTimeout, the protocol keeps a sliding window of recent
// per-hop round-trip samples and scales each route's lifetime with its
// hop count and the network's currently observed latency. Fast, stable
// networks get short-lived routes on short paths (cheap to rediscover,
// quickly stale under motion) and proportionally longer-lived routes on
// long paths whose rediscovery floods are expensive.
//
// The estimator is per-node volatile performance state: it never affects
// loop freedom (lifetimes only gate how long an already-feasible route
// is used), so crashes may discard it freely.
type RTTEstimator struct {
	window []float64 // per-hop RTT samples, seconds, ring-ordered
	next   int

	mult     float64
	min, max time.Duration

	// Samples counts every Observe for diagnostics and tests.
	Samples uint64
}

// Default estimator tuning: the window length matches the exemplar's
// delay aggregate; the multiplier maps the default 40 ms per-hop
// traversal estimate to roughly the constant 3 s timeout on a 3-hop
// path, and the clamp keeps degenerate samples from producing instantly
// expiring or effectively permanent routes.
const (
	rttWindow      = 20
	rttMultiplier  = 25
	rttMinLifetime = time.Second
	rttMaxLifetime = 10 * time.Second
)

// NewRTTEstimator builds an estimator with the default tuning.
func NewRTTEstimator() *RTTEstimator {
	return &RTTEstimator{
		window: make([]float64, 0, rttWindow),
		mult:   rttMultiplier,
		min:    rttMinLifetime,
		max:    rttMaxLifetime,
	}
}

// Observe records one discovery round trip over a path of hops hops.
// The per-hop one-way latency is rtt/(2·hops): the request traveled out
// and the reply traveled back over (approximately) the same path.
func (e *RTTEstimator) Observe(rtt time.Duration, hops int) {
	if rtt <= 0 || hops <= 0 {
		return
	}
	perHop := rtt.Seconds() / (2 * float64(hops))
	if len(e.window) < cap(e.window) {
		e.window = append(e.window, perHop)
	} else {
		e.window[e.next] = perHop
		e.next = (e.next + 1) % len(e.window)
	}
	e.Samples++
}

// Lifetime returns the adaptive lifetime for a route of hops hops, or
// fallback before any samples exist.
func (e *RTTEstimator) Lifetime(hops int, fallback time.Duration) time.Duration {
	if e == nil || len(e.window) == 0 {
		return fallback
	}
	var sum float64
	for _, s := range e.window {
		sum += s
	}
	mean := sum / float64(len(e.window))
	if hops < 1 {
		hops = 1
	}
	lt := time.Duration(e.mult * mean * float64(hops) * float64(time.Second))
	if lt < e.min {
		lt = e.min
	}
	if lt > e.max {
		lt = e.max
	}
	return lt
}

// Reset discards all samples (crash/reboot: the estimator is volatile).
func (e *RTTEstimator) Reset() {
	e.window = e.window[:0]
	e.next = 0
	e.Samples = 0
}
