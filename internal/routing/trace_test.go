package routing_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
)

// relayProtocol forwards data along a fixed chain (node i → node i+1).
type relayProtocol struct {
	node *routing.Node
	last routing.NodeID
}

func (p *relayProtocol) Start()                                        {}
func (p *relayProtocol) Stop()                                         {}
func (p *relayProtocol) HandleControl(routing.NodeID, routing.Message) {}
func (p *relayProtocol) Originate(pkt *routing.DataPacket)             { p.forward(pkt) }
func (p *relayProtocol) HandleData(_ routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Dst == p.node.ID() {
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	p.forward(pkt)
}
func (p *relayProtocol) forward(pkt *routing.DataPacket) {
	if p.node.ID() == p.last {
		p.node.DropData(pkt, metrics.DropNoRoute)
		return
	}
	p.node.SendData(p.node.ID()+1, pkt)
}

func TestRecorderReconstructsPacketPath(t *testing.T) {
	nw, _ := buildChainOfRelays(4)
	rec := routing.NewRecorder(64)
	nw.SetTracer(rec)
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(3, 100) })
	nw.Sim.RunAll()

	path := rec.PacketPath(0, 1)
	want := []routing.NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}

	// The lifecycle must be originate → forwards → deliver.
	evs := rec.Events()
	if evs[0].Kind != routing.TraceOriginate {
		t.Fatalf("first event = %v", evs[0].Kind)
	}
	if last := evs[len(evs)-1]; last.Kind != routing.TraceDeliver || last.Node != 3 {
		t.Fatalf("last event = %+v", last)
	}
}

func TestRecorderBoundedEviction(t *testing.T) {
	rec := routing.NewRecorder(3)
	for i := 0; i < 10; i++ {
		rec.Trace(routing.TraceEvent{At: time.Duration(i), ID: uint64(i)})
	}
	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].ID != 7 || evs[2].ID != 9 {
		t.Fatalf("wrong retention window: %+v", evs)
	}
	if rec.Evicted() != 7 {
		t.Fatalf("evicted = %d, want 7", rec.Evicted())
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := map[routing.TraceEventKind]string{
		routing.TraceOriginate: "originate",
		routing.TraceForward:   "forward",
		routing.TraceDeliver:   "deliver",
		routing.TraceDrop:      "drop",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func buildChainOfRelays(n int) (*routing.Network, []*relayProtocol) {
	var protos []*relayProtocol
	nw := buildWith(n, func(node *routing.Node) routing.Protocol {
		p := &relayProtocol{node: node, last: routing.NodeID(n - 1)}
		protos = append(protos, p)
		return p
	})
	return nw, protos
}
