package routing

import (
	"testing"
	"time"
)

func TestRTTEstimatorFallbackBeforeSamples(t *testing.T) {
	e := NewRTTEstimator()
	if got := e.Lifetime(3, 3*time.Second); got != 3*time.Second {
		t.Fatalf("empty estimator returned %v, want the fallback", got)
	}
	var nilEst *RTTEstimator
	if got := nilEst.Lifetime(3, 3*time.Second); got != 3*time.Second {
		t.Fatalf("nil estimator returned %v, want the fallback", got)
	}
}

func TestRTTEstimatorScalesWithHopsAndDelay(t *testing.T) {
	e := NewRTTEstimator()
	// 240 ms round trip over 3 hops → 40 ms per hop.
	e.Observe(240*time.Millisecond, 3)
	short := e.Lifetime(1, 0)
	long := e.Lifetime(3, 0)
	if short >= long {
		t.Fatalf("1-hop lifetime %v not shorter than 3-hop %v", short, long)
	}
	if want := 3 * time.Second; long != want {
		t.Fatalf("3-hop lifetime %v, want %v (25 × 40ms × 3)", long, want)
	}

	// Faster network → shorter lifetimes, down to the clamp.
	fast := NewRTTEstimator()
	fast.Observe(2*time.Millisecond, 1)
	if got := fast.Lifetime(1, 0); got != time.Second {
		t.Fatalf("lifetime %v, want the 1s floor", got)
	}
	slow := NewRTTEstimator()
	slow.Observe(10*time.Second, 1)
	if got := slow.Lifetime(5, 0); got != 10*time.Second {
		t.Fatalf("lifetime %v, want the 10s ceiling", got)
	}
}

func TestRTTEstimatorWindowSlides(t *testing.T) {
	e := NewRTTEstimator()
	for i := 0; i < 100; i++ {
		e.Observe(time.Second, 1) // 500 ms per hop
	}
	// The early slow samples must have been evicted by fast ones.
	for i := 0; i < 20; i++ {
		e.Observe(80*time.Millisecond, 1) // 40 ms per hop
	}
	if got, want := e.Lifetime(3, 0), 3*time.Second; got != want {
		t.Fatalf("post-slide 3-hop lifetime %v, want %v", got, want)
	}
	if e.Samples != 120 {
		t.Fatalf("Samples = %d, want 120", e.Samples)
	}
}

func TestRTTEstimatorIgnoresDegenerateSamples(t *testing.T) {
	e := NewRTTEstimator()
	e.Observe(0, 3)
	e.Observe(-time.Second, 3)
	e.Observe(time.Second, 0)
	if e.Samples != 0 {
		t.Fatalf("degenerate samples were recorded: %d", e.Samples)
	}
	if got := e.Lifetime(3, 7*time.Second); got != 7*time.Second {
		t.Fatalf("lifetime %v, want fallback after only degenerate samples", got)
	}
}

func TestRTTEstimatorReset(t *testing.T) {
	e := NewRTTEstimator()
	e.Observe(time.Second, 2)
	e.Reset()
	if e.Samples != 0 {
		t.Fatalf("Samples = %d after Reset", e.Samples)
	}
	if got := e.Lifetime(2, 4*time.Second); got != 4*time.Second {
		t.Fatalf("lifetime %v after Reset, want fallback", got)
	}
}
