package routing

import "time"

// TraceEventKind labels a packet-lifecycle event.
type TraceEventKind uint8

// Packet lifecycle events.
const (
	TraceOriginate TraceEventKind = iota + 1
	TraceForward
	TraceDeliver
	TraceDrop
)

// String returns the event's display name.
func (k TraceEventKind) String() string {
	switch k {
	case TraceOriginate:
		return "originate"
	case TraceForward:
		return "forward"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	default:
		return "?"
	}
}

// TraceEvent is one step in a data packet's life. (Src, ID) identifies
// the packet uniquely network-wide.
type TraceEvent struct {
	At   time.Duration
	Kind TraceEventKind
	Node NodeID // where the event happened
	Src  NodeID // packet origin
	Dst  NodeID // packet destination
	ID   uint64 // origin-assigned packet id
	Next NodeID // forward: the chosen next hop

	// Reason classifies drop events; zero for other kinds.
	Reason DropReason
}

// Tracer receives packet lifecycle events. Implementations must be cheap:
// they run inline on the simulator goroutine.
type Tracer interface {
	Trace(TraceEvent)
}

// SetTracer installs a tracer on every node of the network (nil disables).
func (nw *Network) SetTracer(t Tracer) {
	for _, n := range nw.Nodes {
		n.tracer = t
	}
}

// SetTracer installs a tracer on this node (nil disables).
func (n *Node) SetTracer(t Tracer) { n.tracer = t }

// MultiTracer fans every event out to each member in order, letting
// independent consumers (a conservation ledger and a replay log, say)
// observe one run without knowing about each other.
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(ev TraceEvent) {
	for _, t := range m {
		t.Trace(ev)
	}
}

func (n *Node) trace(kind TraceEventKind, pkt *DataPacket, next NodeID, reason DropReason) {
	if n.tracer == nil {
		return
	}
	n.tracer.Trace(TraceEvent{
		At:     n.sim.Now(),
		Kind:   kind,
		Node:   n.id,
		Src:    pkt.Src,
		Dst:    pkt.Dst,
		ID:     pkt.ID,
		Next:   next,
		Reason: reason,
	})
}

// Recorder is a bounded in-memory Tracer, retaining the most recent
// Capacity events (FIFO eviction).
type Recorder struct {
	Capacity int
	events   []TraceEvent
	dropped  uint64
}

var _ Tracer = (*Recorder)(nil)

// NewRecorder returns a Recorder holding up to capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{Capacity: capacity}
}

// Trace implements Tracer.
func (r *Recorder) Trace(ev TraceEvent) {
	if len(r.events) >= r.Capacity {
		r.events = r.events[1:]
		r.dropped++
	}
	r.events = append(r.events, ev)
}

// Events returns the retained events in arrival order (a copy).
func (r *Recorder) Events() []TraceEvent {
	return append([]TraceEvent(nil), r.events...)
}

// Evicted returns how many events were discarded to stay within capacity.
func (r *Recorder) Evicted() uint64 { return r.dropped }

// PacketPath reconstructs the hop sequence of packet (src, id) from the
// retained events: the origin followed by each forwarding node, ending
// with the destination if the packet was delivered.
func (r *Recorder) PacketPath(src NodeID, id uint64) []NodeID {
	var path []NodeID
	for _, ev := range r.events {
		if ev.Src != src || ev.ID != id {
			continue
		}
		switch ev.Kind {
		case TraceOriginate, TraceForward, TraceDeliver:
			if len(path) == 0 || path[len(path)-1] != ev.Node {
				path = append(path, ev.Node)
			}
		}
	}
	return path
}
