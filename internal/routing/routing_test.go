package routing_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// echoProtocol delivers packets addressed to it and records everything.
type echoProtocol struct {
	node       *routing.Node
	controls   []routing.Message
	data       []*routing.DataPacket
	originated []*routing.DataPacket
}

func (p *echoProtocol) Start() {}
func (p *echoProtocol) Stop()  {}
func (p *echoProtocol) HandleControl(_ routing.NodeID, msg routing.Message) {
	p.controls = append(p.controls, msg)
}
func (p *echoProtocol) HandleData(_ routing.NodeID, pkt *routing.DataPacket) {
	p.data = append(p.data, pkt)
	if pkt.Dst == p.node.ID() {
		p.node.DeliverLocal(pkt)
	}
}
func (p *echoProtocol) Originate(pkt *routing.DataPacket) {
	p.originated = append(p.originated, pkt)
}

// testMsg is a minimal control message.
type testMsg struct {
	tag  int
	kind metrics.ControlKind
}

func (m testMsg) Kind() metrics.ControlKind { return m.kind }
func (m testMsg) Size() int                 { return 24 }

func build(n int) (*routing.Network, []*echoProtocol) {
	var protos []*echoProtocol
	nw := buildWith(n, func(node *routing.Node) routing.Protocol {
		p := &echoProtocol{node: node}
		protos = append(protos, p)
		return p
	})
	return nw, protos
}

func buildWith(n int, factory routing.ProtocolFactory) *routing.Network {
	return routing.NewNetwork(n, mobility.Line(n, 200), radio.DefaultConfig(), mac.DefaultConfig(), 5, factory)
}

func TestControlBroadcastReachesNeighborsOnly(t *testing.T) {
	nw, protos := build(4) // 200 m spacing: node 0 hears only node 1
	nw.Start()
	nw.Sim.Schedule(0, func() {
		nw.Nodes[0].SendControl(routing.BroadcastID, testMsg{tag: 1, kind: metrics.RREQ}, nil)
	})
	nw.Sim.RunAll()

	if len(protos[1].controls) != 1 {
		t.Fatalf("neighbor got %d control messages, want 1", len(protos[1].controls))
	}
	if len(protos[2].controls) != 0 || len(protos[3].controls) != 0 {
		t.Fatal("control broadcast leaked past radio range")
	}
	if got := nw.Collector.ControlTransmitted(metrics.RREQ); got != 1 {
		t.Fatalf("RREQ transmit count = %d, want 1", got)
	}
}

func TestControlUnicastFailureCallback(t *testing.T) {
	nw, _ := build(2)
	nw.Start()
	failed := false
	nw.Sim.Schedule(0, func() {
		// Node 3 does not exist on the link: MAC retries then fails.
		nw.Nodes[0].SendControl(5, testMsg{tag: 2, kind: metrics.RREP}, func() { failed = true })
	})
	nw.Sim.RunAll()
	if !failed {
		t.Fatal("unicast control to unreachable address did not report failure")
	}
}

func TestOriginateCountsAndStampsPackets(t *testing.T) {
	nw, protos := build(2)
	nw.Start()
	nw.Sim.At(3*time.Second, func() { nw.Nodes[0].OriginateData(1, 512) })
	nw.Sim.RunAll()

	if nw.Collector.DataInitiated != 1 {
		t.Fatalf("initiated = %d", nw.Collector.DataInitiated)
	}
	if len(protos[0].originated) != 1 {
		t.Fatal("protocol did not receive the originated packet")
	}
	pkt := protos[0].originated[0]
	if pkt.Src != 0 || pkt.Dst != 1 || pkt.Bytes != 512 || pkt.TTL != routing.DefaultTTL {
		t.Fatalf("packet fields wrong: %+v", pkt)
	}
	if pkt.SentAt != 3*time.Second {
		t.Fatalf("SentAt = %v, want 3s", pkt.SentAt)
	}
	if pkt.ID == 0 {
		t.Fatal("packet ID not assigned")
	}
}

func TestDataDeliveryAndLatencyAccounting(t *testing.T) {
	nw, protos := build(2)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		pkt := &routing.DataPacket{Src: 0, Dst: 1, Bytes: 512, TTL: 8}
		nw.Nodes[0].SendData(1, pkt)
	})
	nw.Sim.RunAll()

	if len(protos[1].data) != 1 {
		t.Fatalf("destination received %d packets", len(protos[1].data))
	}
	c := nw.Collector
	if c.DataTransmitted != 1 || c.DataDelivered != 1 {
		t.Fatalf("transmitted=%d delivered=%d", c.DataTransmitted, c.DataDelivered)
	}
	if c.TotalLatency <= 0 {
		t.Fatal("latency not accumulated")
	}
}

func TestBroadcastDataCopiesAreIndependent(t *testing.T) {
	// Two receivers of the same broadcast frame must get independent
	// packet copies: mutating one (TTL, source route) must not affect the
	// other.
	nw, protos := build(3)
	// Reposition: use a 3-node rig where node 1 is between 0 and 2? Line
	// spacing 200 m means node 1 hears 0 and 2. Broadcast from node 1.
	nw.Start()
	nw.Sim.Schedule(0, func() {
		pkt := &routing.DataPacket{
			Src: 1, Dst: 2, Bytes: 100, TTL: 10,
			SourceRoute: []routing.NodeID{1, 0, 2},
		}
		nw.Nodes[1].SendData(routing.BroadcastID, pkt)
	})
	nw.Sim.RunAll()

	if len(protos[0].data) != 1 || len(protos[2].data) != 1 {
		t.Fatalf("broadcast data not delivered to both neighbors: %d, %d",
			len(protos[0].data), len(protos[2].data))
	}
	a, b := protos[0].data[0], protos[2].data[0]
	if a == b {
		t.Fatal("receivers share one packet pointer")
	}
	a.TTL = 1
	a.SourceRoute[0] = 99
	if b.TTL == 1 || b.SourceRoute[0] == 99 {
		t.Fatal("mutating one receiver's copy affected the other")
	}
}

func TestDropDataCounts(t *testing.T) {
	nw, _ := build(2)
	nw.Nodes[0].DropData(&routing.DataPacket{}, metrics.DropNoRoute)
	if nw.Collector.DataDropped != 1 {
		t.Fatal("DropData did not count")
	}
}

func TestNetworkStartStopPropagates(t *testing.T) {
	started := 0
	stopped := 0
	nw := routing.NewNetwork(3, mobility.Line(3, 200), radio.DefaultConfig(), mac.DefaultConfig(), 1,
		func(node *routing.Node) routing.Protocol {
			return &hookProtocol{onStart: func() { started++ }, onStop: func() { stopped++ }}
		})
	nw.Start()
	nw.Stop()
	if started != 3 || stopped != 3 {
		t.Fatalf("started=%d stopped=%d, want 3/3", started, stopped)
	}
}

type hookProtocol struct {
	onStart, onStop func()
}

func (p *hookProtocol) Start()                                         { p.onStart() }
func (p *hookProtocol) Stop()                                          { p.onStop() }
func (p *hookProtocol) HandleControl(routing.NodeID, routing.Message)  {}
func (p *hookProtocol) HandleData(routing.NodeID, *routing.DataPacket) {}
func (p *hookProtocol) Originate(*routing.DataPacket)                  {}
